package main

import (
	"bytes"
	"fmt"
	"testing"
)

// FuzzDataRoundTrip drives the export -> -data reload loop with arbitrary
// generator seeds: for any dataset the generator can produce, exporting its
// tables as typed CSVs and reloading them through -data must reconstruct an
// auditor whose summary — row counts, distinct counts, table inventory, and
// explained fraction — is identical to the generated one's, without ever
// panicking. The corpus seeds the three dataset seeds the differential
// tests run on.
func FuzzDataRoundTrip(f *testing.F) {
	for _, seed := range []int64{1, 2, 3} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		seedArg := fmt.Sprint(seed)
		var genOut, genErr bytes.Buffer
		if err := run([]string{"-seed", seedArg, "summary"}, &genOut, &genErr); err != nil {
			t.Fatalf("seed %d: generated summary: %v\nstderr: %s", seed, err, genErr.String())
		}

		dir := t.TempDir()
		var expOut, expErr bytes.Buffer
		if err := run([]string{"-seed", seedArg, "export", "-dir", dir}, &expOut, &expErr); err != nil {
			t.Fatalf("seed %d: export: %v\nstderr: %s", seed, err, expErr.String())
		}

		var loadOut, loadErr bytes.Buffer
		if err := run([]string{"-data", dir, "summary"}, &loadOut, &loadErr); err != nil {
			t.Fatalf("seed %d: reloaded summary: %v\nstderr: %s", seed, err, loadErr.String())
		}
		if genOut.String() != loadOut.String() {
			t.Errorf("seed %d: audit summary changed across the export/reload round trip:\n--- generated ---\n%s--- reloaded ---\n%s",
				seed, genOut.String(), loadOut.String())
		}
	})
}
