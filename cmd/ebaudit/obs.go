// Observability surfacing for the CLI: the -metrics-addr live endpoint
// (Prometheus text, expvar-style JSON, pprof), the audit -trace NDJSON span
// sink, the audit -explain per-template plan+exec report, and the -v metrics
// dump. Everything here reads the same internal/obs registries the engine
// layers write; nothing below this file knows the CLI exists.
package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"repro/internal/explain"
	"repro/internal/obs"
	"repro/internal/query"
)

// metricsSnapshot merges every registry the app's engine topology writes:
// each shard engine's registry (per-engine metrics carry shard attribution)
// plus the process-wide obs.Default registry (parallel and store metrics,
// which have no engine to hang on).
func (a *app) metricsSnapshot() map[string]obs.Metric {
	if a.fed != nil {
		return a.fed.MetricsSnapshot()
	}
	return obs.Merge(a.auditor.Evaluator().Metrics().Snapshot(), obs.Default.Snapshot())
}

// serveMetrics binds addr and serves the live observability endpoints for
// the rest of the process's life: /metrics (Prometheus text format),
// /debug/vars (expvar-style JSON), and /debug/pprof/* (the standard
// profiling handlers). It returns the bound address so ":0" requests can
// report the kernel-chosen port.
func (a *app) serveMetrics(addr string) (string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = obs.WritePrometheus(w, a.metricsSnapshot())
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = obs.WriteJSON(w, a.metricsSnapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("-metrics-addr %s: %w", addr, err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck // endpoint lives until the process exits
	return ln.Addr().String(), nil
}

// dumpMetrics writes a registry snapshot as one "name value" line per
// metric (histograms as count/sum/mean), sorted by name — the -v teaching
// view of what /metrics would serve.
func dumpMetrics(w io.Writer, snap map[string]obs.Metric) {
	fmt.Fprintln(w, "metrics:")
	for _, name := range obs.SortedNames(snap) {
		m := snap[name]
		if m.Kind == obs.KindHistogram {
			mean := int64(0)
			if m.Count > 0 {
				mean = m.Sum / m.Count
			}
			fmt.Fprintf(w, "  %-40s count=%d sum=%d mean=%d\n", name, m.Count, m.Sum, mean)
			continue
		}
		fmt.Fprintf(w, "  %-40s %d\n", name, m.Value)
	}
}

// startTrace enables observability, installs a fresh span tracer, and
// returns the finisher that restores the previous tracer, drains the
// collected spans to path as NDJSON, and reports the span and drop counts
// on stderr. The ring is bounded: a run that out-produces it drops spans
// (counted, reported) rather than blocking the audit.
func startTrace(path string, stderr io.Writer) (finish func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("-trace: %w", err)
	}
	obs.SetEnabled(true)
	tr := obs.NewTracer(0)
	prev := obs.SetTracer(tr)
	return func() error {
		obs.SetTracer(prev)
		n, derr := tr.Drain(f)
		cerr := f.Close()
		fmt.Fprintf(stderr, "wrote %d spans to %s (%d dropped)\n", n, path, tr.Dropped())
		if derr != nil {
			return fmt.Errorf("-trace: draining spans: %w", derr)
		}
		return cerr
	}, nil
}

// printExplainReport renders the EXPLAIN ANALYZE view of the audit just
// run: for every registered template whose evaluation goes through the
// compiled-plan cache, the planner's decisions (PlanInfo) followed by the
// per-op execution counters the audit accumulated (ExecTrace). Templates
// that evaluate outside the plan cache — decorated DFS templates,
// log-only templates — get a note instead of a fabricated zero trace.
func (a *app) printExplainReport(w io.Writer) {
	ev := a.auditor.Evaluator()
	for _, t := range a.auditor.Templates() {
		tpl, ok := t.(*explain.PathTemplate)
		if !ok {
			fmt.Fprintf(w, "template %s: evaluates outside the plan cache (%s); no exec trace\n",
				t.Name(), templateKind(t))
			continue
		}
		pp := ev.Prepare(tpl.Path)
		printPlanExec(w, t.Name(), pp.PlanInfo(), pp.ExecTrace())
	}
}

// templateKind names the evaluation strategy of a non-plan-cache template
// for the -explain notes.
func templateKind(t explain.Template) string {
	if _, ok := t.(*explain.DecoratedTemplate); ok {
		return "decorated bound-tuple DFS"
	}
	return "direct log scan"
}

// printPlanExec renders one template's plan decisions and per-op execution
// counters. Counter semantics: rows-in is values entering the op, rows-out
// values that qualified, postings the pair-list entries consumed (the same
// events PostingsScanned counts, attributed per op), memo the evaluations a
// memo answered without walking.
func printPlanExec(w io.Writer, name string, info query.PlanInfo, tr query.ExecTrace) {
	side := "start-side"
	if info.EndSide {
		side = "end-side"
	}
	if info.Planned {
		fmt.Fprintf(w, "template %s: plan %d->%d ops (%d contractions), pairs %d->%d (%d pruned), %s, planned in %v\n",
			name, info.HopsDeclared, info.HopsPlanned, info.Contractions,
			info.PairsDeclared, info.PairsPlanned, info.PairsPruned,
			side, time.Duration(info.PlanNanos).Round(time.Microsecond))
	} else {
		fmt.Fprintf(w, "template %s: declared-order plan (planner disabled)\n", name)
	}
	if len(tr.Ops) == 0 {
		fmt.Fprintln(w, "  (no execution recorded)")
		return
	}
	fmt.Fprintf(w, "  %-3s %-7s %-28s %12s %12s %12s %10s\n",
		"op", "kind", "table", "rows-in", "rows-out", "postings", "memo")
	for i, o := range tr.Ops {
		table := o.Table
		if table == "" {
			table = "-"
		}
		fmt.Fprintf(w, "  %-3d %-7s %-28s %12d %12d %12d %10d\n",
			i, o.Kind, table, o.RowsIn, o.RowsOut, o.Postings, o.MemoHits)
	}
}
