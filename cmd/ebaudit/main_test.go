package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeDataDir materializes a fake -data directory from file name -> CSV
// content.
func writeDataDir(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const goodLogCSV = "Lid:int,Date:date,User:int,Patient:int\n1,1,100,7\n2,2,101,8\n"

// TestRunDataErrors is the table-driven malformed-input suite: every way a
// -data directory can be broken must surface as a descriptive error from
// run, never as a relation/query panic or a zero exit.
func TestRunDataErrors(t *testing.T) {
	cases := []struct {
		name    string
		files   map[string]string // nil means point -data at a nonexistent path
		wantSub string
	}{
		{
			name:    "missing directory",
			files:   nil,
			wantSub: "reading -data directory",
		},
		{
			name:    "no csv tables",
			files:   map[string]string{"README.txt": "not a table"},
			wantSub: "no .csv tables found",
		},
		{
			name:    "missing Log table",
			files:   map[string]string{"Appointments.csv": "Patient:int,Date:date,Doctor:int\n7,1,3\n"},
			wantSub: "has no Log table",
		},
		{
			name:    "missing required column",
			files:   map[string]string{"Log.csv": "Lid:int,Date:date,User:int\n1,1,100\n"},
			wantSub: `lacks required column "Patient"`,
		},
		{
			name:    "header cell without kind",
			files:   map[string]string{"Log.csv": "Lid,Date:date,User:int,Patient:int\n1,1,100,7\n"},
			wantSub: "lacks a :kind suffix",
		},
		{
			name:    "unknown column kind",
			files:   map[string]string{"Log.csv": "Lid:uuid,Date:date,User:int,Patient:int\n1,1,100,7\n"},
			wantSub: `unknown kind "uuid"`,
		},
		{
			name:    "short csv row",
			files:   map[string]string{"Log.csv": "Lid:int,Date:date,User:int,Patient:int\n1,1,100\n"},
			wantSub: "line 2 has 3 fields, want 4",
		},
		{
			name:    "non-numeric int cell",
			files:   map[string]string{"Log.csv": "Lid:int,Date:date,User:int,Patient:int\nabc,1,100,7\n"},
			wantSub: "line 2 column Lid",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "nonexistent")
			if tc.files != nil {
				dir = writeDataDir(t, tc.files)
			}
			var stdout, stderr bytes.Buffer
			err := run([]string{"-data", dir, "summary"}, &stdout, &stderr)
			if err == nil {
				t.Fatalf("run succeeded on %s; stdout:\n%s", tc.name, stdout.String())
			}
			if errors.Is(err, errUsage) {
				t.Fatalf("malformed data reported as usage error: %v", err)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestRunUsageErrors pins command-line misuse to errUsage (exit status 2).
func TestRunUsageErrors(t *testing.T) {
	for _, argv := range [][]string{
		{},
		{"frobnicate"},
		{"-scale", "galactic", "summary"},
		{"-not-a-flag", "summary"},
	} {
		var stdout, stderr bytes.Buffer
		if err := run(argv, &stdout, &stderr); !errors.Is(err, errUsage) {
			t.Errorf("run(%v) = %v, want usage error", argv, err)
		}
	}
}

// TestRunDataRoundTrip exports a generated hospital, reloads it via -data,
// and checks both a materialized audit and the NDJSON -stream mode: the
// stream must carry one valid JSON report per log row, in log order.
func TestRunDataRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	if err := run([]string{"export", "-dir", dir}, &stdout, &stderr); err != nil {
		t.Fatalf("export: %v\nstderr: %s", err, stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	if err := run([]string{"-data", dir, "audit"}, &stdout, &stderr); err != nil {
		t.Fatalf("audit over reloaded data: %v\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "batch-audited") {
		t.Fatalf("audit output missing summary:\n%s", stdout.String())
	}

	stdout.Reset()
	stderr.Reset()
	if err := run([]string{"-data", dir, "audit", "-stream", "-v"}, &stdout, &stderr); err != nil {
		t.Fatalf("audit -stream: %v\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "streamed") || !strings.Contains(stderr.String(), "reach memo:") {
		t.Errorf("stream summary missing from stderr:\n%s", stderr.String())
	}

	lines := 0
	prevLid := int64(-1)
	sc := bufio.NewScanner(bytes.NewReader(stdout.Bytes()))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		var rep ndjsonReport
		if err := json.Unmarshal(sc.Bytes(), &rep); err != nil {
			t.Fatalf("line %d is not valid NDJSON: %v\n%s", lines+1, err, sc.Text())
		}
		if rep.Lid <= prevLid {
			t.Fatalf("NDJSON out of log order: lid %d after %d", rep.Lid, prevLid)
		}
		prevLid = rep.Lid
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("stream produced no reports")
	}
}

// TestRunFlagValidation pins the flag-misuse cases that must exit 1 with a
// descriptive error (not a usage error, not a panic, not a silent default):
// a worker count below 1, an empty entry in the -data list, and a federated
// shard count below 1.
func TestRunFlagValidation(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	if err := run([]string{"export", "-dir", dir}, &stdout, &stderr); err != nil {
		t.Fatalf("export: %v", err)
	}
	cases := []struct {
		name    string
		argv    []string
		wantSub string
	}{
		{"j zero", []string{"-j", "0", "summary"}, "-j must be at least 1"},
		{"j negative", []string{"-j", "-4", "summary"}, "-j must be at least 1"},
		{"empty data entry", []string{"-data", dir + ",,", "summary"}, "empty entry"},
		{"shards zero", []string{"audit", "-shards", "0"}, "-shards must be at least 1"},
		{"shards negative", []string{"audit", "-shards", "-1"}, "-shards must be at least 1"},
		{"shards with federated data", []string{"-data", dir + "," + dir, "audit", "-shards", "2"}, "cannot be combined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			err := run(tc.argv, &stdout, &stderr)
			if err == nil {
				t.Fatalf("run(%v) succeeded", tc.argv)
			}
			if errors.Is(err, errUsage) {
				t.Fatalf("run(%v) reported a usage error (exit 2), want a validation error (exit 1)", tc.argv)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// splitExportedLog rewrites an exported dataset as two shard directories:
// every table is copied to both, except the Log, whose rows are split at
// the given fraction — the multi-deployment layout -data dirA,dirB loads.
func splitExportedLog(t *testing.T, exportDir string, frac float64) (string, string) {
	t.Helper()
	entries, err := os.ReadDir(exportDir)
	if err != nil {
		t.Fatal(err)
	}
	base := t.TempDir()
	dirA := filepath.Join(base, "east")
	dirB := filepath.Join(base, "west")
	for _, dir := range []string{dirA, dirB} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(exportDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if e.Name() != "Log.csv" {
			for _, dir := range []string{dirA, dirB} {
				if err := os.WriteFile(filepath.Join(dir, e.Name()), data, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			continue
		}
		lines := strings.SplitAfter(string(data), "\n")
		if lines[len(lines)-1] == "" {
			lines = lines[:len(lines)-1]
		}
		header, rows := lines[0], lines[1:]
		cut := int(float64(len(rows)) * frac)
		writeShard := func(dir string, shard []string) {
			content := header + strings.Join(shard, "")
			if err := os.WriteFile(filepath.Join(dir, "Log.csv"), []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		writeShard(dirA, rows[:cut])
		writeShard(dirB, rows[cut:])
	}
	return dirA, dirB
}

// TestFederatedStreamByteIdentical is the CLI-level federated differential:
// the NDJSON emitted by audit -stream must be byte-identical across (a) the
// single engine, (b) audit -shards K partitioning of the same log, and (c)
// a multi-directory federation of the log split across two deployments.
func TestFederatedStreamByteIdentical(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	if err := run([]string{"export", "-dir", dir}, &stdout, &stderr); err != nil {
		t.Fatalf("export: %v", err)
	}

	streamOut := func(argv ...string) string {
		t.Helper()
		var stdout, stderr bytes.Buffer
		if err := run(argv, &stdout, &stderr); err != nil {
			t.Fatalf("run(%v): %v\nstderr: %s", argv, err, stderr.String())
		}
		return stdout.String()
	}

	want := streamOut("-data", dir, "audit", "-stream")
	if want == "" {
		t.Fatal("single-engine stream is empty")
	}
	for _, k := range []string{"1", "2", "4"} {
		if got := streamOut("-data", dir, "audit", "-stream", "-shards", k); got != want {
			t.Errorf("audit -shards %s stream differs from the single-engine stream", k)
		}
	}

	dirA, dirB := splitExportedLog(t, dir, 0.4)
	if got := streamOut("-data", dirA+","+dirB, "audit", "-stream"); got != want {
		t.Error("multi-directory federated stream differs from the single-engine stream")
	}

	// The materialized federated audit agrees on the headline numbers and
	// reports per-shard internals under -v.
	var fedOut, fedErr bytes.Buffer
	if err := run([]string{"-data", dir, "audit", "-shards", "2", "-v"}, &fedOut, &fedErr); err != nil {
		t.Fatalf("federated audit: %v", err)
	}
	for _, sub := range []string{"federated batch-audited", "across 2 shards", "plan cache (all shards)", "shard0:", "shard1:"} {
		if !strings.Contains(fedOut.String(), sub) {
			t.Errorf("federated audit output missing %q:\n%s", sub, fedOut.String())
		}
	}
}

// TestFederatedSubcommands smoke-tests the rest of the surface over a
// multi-directory federation: summary, unexplained, mine, templates, and
// patient answer over the merged log, while export is refused.
func TestFederatedSubcommands(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	if err := run([]string{"export", "-dir", dir}, &stdout, &stderr); err != nil {
		t.Fatalf("export: %v", err)
	}
	dirA, dirB := splitExportedLog(t, dir, 0.5)
	data := dirA + "," + dirB

	runOK := func(argv ...string) string {
		t.Helper()
		var stdout, stderr bytes.Buffer
		if err := run(argv, &stdout, &stderr); err != nil {
			t.Fatalf("run(%v): %v\nstderr: %s", argv, err, stderr.String())
		}
		return stdout.String()
	}

	if out := runOK("-data", data, "summary"); !strings.Contains(out, "federation: 2 shards") ||
		!strings.Contains(out, "east:") || !strings.Contains(out, "west:") {
		t.Errorf("federated summary:\n%s", out)
	}
	if out := runOK("-data", data, "unexplained", "-n", "3"); !strings.Contains(out, "accesses unexplained") {
		t.Errorf("federated unexplained:\n%s", out)
	}
	if out := runOK("-data", data, "mine", "-M", "3"); !strings.Contains(out, "mined") {
		t.Errorf("federated mine:\n%s", out)
	}
	if out := runOK("-data", data, "templates"); !strings.Contains(out, "SELECT") {
		t.Errorf("federated templates:\n%s", out)
	}
	// Both shard directories carry identical Groups.csv copies (the export
	// wrote the single engine's table to each), so the Join reuses them
	// without retraining — and, like a single-engine -data load that reuses a
	// Groups table, the depth views of the training hierarchy are unavailable.
	var grpBuf bytes.Buffer
	if err := run([]string{"-data", data, "groups"}, &grpBuf, &grpBuf); err == nil ||
		!strings.Contains(err.Error(), "reused as-is") {
		t.Errorf("federated groups over reused tables: err = %v, want the reuse explanation", err)
	}

	var exBuf bytes.Buffer
	err := run([]string{"-data", data, "export", "-dir", t.TempDir()}, &exBuf, &exBuf)
	if err == nil || !strings.Contains(err.Error(), "not supported") {
		t.Errorf("federated export: %v", err)
	}
}
