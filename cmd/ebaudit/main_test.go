package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeDataDir materializes a fake -data directory from file name -> CSV
// content.
func writeDataDir(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const goodLogCSV = "Lid:int,Date:date,User:int,Patient:int\n1,1,100,7\n2,2,101,8\n"

// TestRunDataErrors is the table-driven malformed-input suite: every way a
// -data directory can be broken must surface as a descriptive error from
// run, never as a relation/query panic or a zero exit.
func TestRunDataErrors(t *testing.T) {
	cases := []struct {
		name    string
		files   map[string]string // nil means point -data at a nonexistent path
		wantSub string
	}{
		{
			name:    "missing directory",
			files:   nil,
			wantSub: "reading -data directory",
		},
		{
			name:    "no csv tables",
			files:   map[string]string{"README.txt": "not a table"},
			wantSub: "no .csv tables found",
		},
		{
			name:    "missing Log table",
			files:   map[string]string{"Appointments.csv": "Patient:int,Date:date,Doctor:int\n7,1,3\n"},
			wantSub: "has no Log table",
		},
		{
			name:    "missing required column",
			files:   map[string]string{"Log.csv": "Lid:int,Date:date,User:int\n1,1,100\n"},
			wantSub: `lacks required column "Patient"`,
		},
		{
			name:    "header cell without kind",
			files:   map[string]string{"Log.csv": "Lid,Date:date,User:int,Patient:int\n1,1,100,7\n"},
			wantSub: "lacks a :kind suffix",
		},
		{
			name:    "unknown column kind",
			files:   map[string]string{"Log.csv": "Lid:uuid,Date:date,User:int,Patient:int\n1,1,100,7\n"},
			wantSub: `unknown kind "uuid"`,
		},
		{
			name:    "short csv row",
			files:   map[string]string{"Log.csv": "Lid:int,Date:date,User:int,Patient:int\n1,1,100\n"},
			wantSub: "row 1 has 3 fields, want 4",
		},
		{
			name:    "non-numeric int cell",
			files:   map[string]string{"Log.csv": "Lid:int,Date:date,User:int,Patient:int\nabc,1,100,7\n"},
			wantSub: "row 1 column Lid",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "nonexistent")
			if tc.files != nil {
				dir = writeDataDir(t, tc.files)
			}
			var stdout, stderr bytes.Buffer
			err := run([]string{"-data", dir, "summary"}, &stdout, &stderr)
			if err == nil {
				t.Fatalf("run succeeded on %s; stdout:\n%s", tc.name, stdout.String())
			}
			if errors.Is(err, errUsage) {
				t.Fatalf("malformed data reported as usage error: %v", err)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestRunUsageErrors pins command-line misuse to errUsage (exit status 2).
func TestRunUsageErrors(t *testing.T) {
	for _, argv := range [][]string{
		{},
		{"frobnicate"},
		{"-scale", "galactic", "summary"},
		{"-not-a-flag", "summary"},
	} {
		var stdout, stderr bytes.Buffer
		if err := run(argv, &stdout, &stderr); !errors.Is(err, errUsage) {
			t.Errorf("run(%v) = %v, want usage error", argv, err)
		}
	}
}

// TestRunDataRoundTrip exports a generated hospital, reloads it via -data,
// and checks both a materialized audit and the NDJSON -stream mode: the
// stream must carry one valid JSON report per log row, in log order.
func TestRunDataRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	if err := run([]string{"export", "-dir", dir}, &stdout, &stderr); err != nil {
		t.Fatalf("export: %v\nstderr: %s", err, stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	if err := run([]string{"-data", dir, "audit"}, &stdout, &stderr); err != nil {
		t.Fatalf("audit over reloaded data: %v\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "batch-audited") {
		t.Fatalf("audit output missing summary:\n%s", stdout.String())
	}

	stdout.Reset()
	stderr.Reset()
	if err := run([]string{"-data", dir, "audit", "-stream", "-v"}, &stdout, &stderr); err != nil {
		t.Fatalf("audit -stream: %v\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "streamed") || !strings.Contains(stderr.String(), "reach memo:") {
		t.Errorf("stream summary missing from stderr:\n%s", stderr.String())
	}

	lines := 0
	prevLid := int64(-1)
	sc := bufio.NewScanner(bytes.NewReader(stdout.Bytes()))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		var rep ndjsonReport
		if err := json.Unmarshal(sc.Bytes(), &rep); err != nil {
			t.Fatalf("line %d is not valid NDJSON: %v\n%s", lines+1, err, sc.Text())
		}
		if rep.Lid <= prevLid {
			t.Fatalf("NDJSON out of log order: lid %d after %d", rep.Lid, prevLid)
		}
		prevLid = rep.Lid
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("stream produced no reports")
	}
}
