package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
)

// countLogRows returns the number of data rows in dir's Log.csv.
func countLogRows(t *testing.T, dir string) int {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, "Log.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	}
	return len(lines) - 1 // minus header
}

// TestCLIFaultsRetryByteIdentical is the CLI chaos differential: a
// federated audit -stream whose shard stream seam fails transiently, run
// with a -retries budget, must emit NDJSON byte-identical to the unfaulted
// single-engine stream — the resume-skip retry leaves no duplicates and no
// holes.
func TestCLIFaultsRetryByteIdentical(t *testing.T) {
	t.Cleanup(fault.Reset)
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	if err := run([]string{"export", "-dir", dir}, &stdout, &stderr); err != nil {
		t.Fatalf("export: %v", err)
	}
	var want, wantErr bytes.Buffer
	if err := run([]string{"-data", dir, "audit", "-stream"}, &want, &wantErr); err != nil {
		t.Fatalf("reference stream: %v\nstderr: %s", err, wantErr.String())
	}
	dirA, dirB := splitExportedLog(t, dir, 0.4)

	var got, gotErr bytes.Buffer
	err := run([]string{"-data", dirA + "," + dirB,
		"-faults", "federate.west.stream:flaky:2",
		"audit", "-stream", "-retries", "3"}, &got, &gotErr)
	if err != nil {
		t.Fatalf("faulted federated stream: %v\nstderr: %s", err, gotErr.String())
	}
	if got.String() != want.String() {
		t.Errorf("faulted+retried stream differs from the single-engine stream (%d vs %d bytes)",
			got.Len(), want.Len())
	}
	if fault.Default.Injected() == 0 {
		t.Error("no faults fired; the differential proved nothing")
	}
}

// TestCLIDegradedStream pins the degraded-mode CLI contract: with one shard
// permanently down, audit -stream -degraded exits 0 and emits exactly the
// surviving shard's reports — a byte-prefix of the single-engine stream,
// because the log was split at a time cut — followed by the machine-readable
// NDJSON trailer, with a DEGRADED note on stderr. Without -degraded the same
// fault is a strict-mode failure with nonzero exit.
func TestCLIDegradedStream(t *testing.T) {
	t.Cleanup(fault.Reset)
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	if err := run([]string{"export", "-dir", dir}, &stdout, &stderr); err != nil {
		t.Fatalf("export: %v", err)
	}
	var want, wantErr bytes.Buffer
	if err := run([]string{"-data", dir, "audit", "-stream"}, &want, &wantErr); err != nil {
		t.Fatalf("reference stream: %v\nstderr: %s", err, wantErr.String())
	}
	dirA, dirB := splitExportedLog(t, dir, 0.4)
	rowsA, rowsB := countLogRows(t, dirA), countLogRows(t, dirB)

	// Strict mode first: the permanent fault must abort the audit.
	var strictOut, strictErr bytes.Buffer
	err := run([]string{"-data", dirA + "," + dirB,
		"-faults", "federate.west.*:error",
		"audit", "-stream"}, &strictOut, &strictErr)
	if err == nil || !strings.Contains(err.Error(), "shard down") {
		t.Fatalf("strict mode with a downed shard: err = %v, want shard-down failure", err)
	}
	fault.Reset()

	// Degraded mode: the surviving east shard's reports plus the trailer.
	var got, gotErr bytes.Buffer
	err = run([]string{"-data", dirA + "," + dirB,
		"-faults", "federate.west.*:error",
		"audit", "-stream", "-degraded"}, &got, &gotErr)
	if err != nil {
		t.Fatalf("degraded federated stream: %v\nstderr: %s", err, gotErr.String())
	}
	wantLines := strings.SplitAfter(want.String(), "\n")
	if wantLines[len(wantLines)-1] == "" {
		wantLines = wantLines[:len(wantLines)-1]
	}
	if len(wantLines) != rowsA+rowsB {
		t.Fatalf("reference stream has %d lines, want %d", len(wantLines), rowsA+rowsB)
	}
	trailer := fmt.Sprintf("{\"degraded\":{\"missingShards\":[\"west\"],\"rowsSkipped\":%d}}\n", rowsB)
	wantDeg := strings.Join(wantLines[:rowsA], "") + trailer
	if got.String() != wantDeg {
		t.Errorf("degraded stream != surviving-shard prefix + trailer (%d vs %d bytes)",
			got.Len(), len(wantDeg))
	}
	if !strings.Contains(gotErr.String(), "DEGRADED result: missing shards [west]") {
		t.Errorf("stderr missing the degraded note:\n%s", gotErr.String())
	}

	// The materialized mode surfaces the same note without a trailer on
	// stdout (stdout is the human report there).
	fault.Reset()
	var matOut, matErr bytes.Buffer
	err = run([]string{"-data", dirA + "," + dirB,
		"-faults", "federate.west.*:error",
		"audit", "-degraded"}, &matOut, &matErr)
	if err != nil {
		t.Fatalf("degraded materialized audit: %v\nstderr: %s", err, matErr.String())
	}
	if !strings.Contains(matOut.String(), fmt.Sprintf("federated batch-audited %d accesses", rowsA)) {
		t.Errorf("materialized degraded audit did not report %d surviving accesses:\n%s", rowsA, matOut.String())
	}
	if !strings.Contains(matErr.String(), "DEGRADED result") {
		t.Errorf("materialized stderr missing the degraded note:\n%s", matErr.String())
	}
	if strings.Contains(matOut.String(), "\"degraded\"") {
		t.Error("materialized mode must not emit the NDJSON trailer")
	}
}

// TestCLIResilienceValidation pins the flag surface: resilience flags
// require a federation, bounds are checked, and malformed -faults specs are
// rejected with pointable diagnostics.
func TestCLIResilienceValidation(t *testing.T) {
	t.Cleanup(fault.Reset)
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run([]string{"export", "-dir", dir}, &buf, &buf); err != nil {
		t.Fatalf("export: %v", err)
	}
	cases := []struct {
		argv []string
		want string
	}{
		{[]string{"-data", dir, "audit", "-degraded"}, "require a federated audit"},
		{[]string{"-data", dir, "audit", "-retries", "2"}, "require a federated audit"},
		{[]string{"-data", dir, "audit", "-call-timeout", "1s"}, "require a federated audit"},
		{[]string{"audit", "-retries", "-1"}, "-retries must be >= 0"},
		{[]string{"audit", "-call-timeout", "-1s"}, "-call-timeout must be >= 0"},
		{[]string{"audit", "-grace", "0s"}, "-grace must be positive"},
		{[]string{"-faults", "noseam", "summary"}, "want SITE:KIND"},
		{[]string{"-faults", "a.b:bogus", "summary"}, "unknown kind"},
		{[]string{"-faults", "a.b:delay=xyz", "summary"}, "bad delay"},
		{[]string{"-faults", "a.b:error:x", "summary"}, "bad count"},
		{[]string{"-faults", "a.b:error:1:y", "summary"}, "bad after"},
		{[]string{"-faults", ":error", "summary"}, "empty site"},
		{[]string{"-faults", "a.b:error,", "summary"}, "empty entry"},
	}
	for _, tc := range cases {
		var stdout, stderr bytes.Buffer
		err := run(tc.argv, &stdout, &stderr)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v) error = %v, want containing %q", tc.argv, err, tc.want)
		}
		fault.Reset()
	}
}

// TestFollowGraceRecovers pins satellite behavior for follow mode: the
// -data file renamed away mid-session (a log rotation caught at the wrong
// moment) produces transient poll errors that are retried with backoff
// inside the grace window, and once the file returns — grown to the full
// log — the session recovers and the concatenated NDJSON is byte-identical
// to a one-shot stream over the final log.
func TestFollowGraceRecovers(t *testing.T) {
	exportDir := t.TempDir()
	var stdout, stderr bytes.Buffer
	if err := run([]string{"export", "-dir", exportDir}, &stdout, &stderr); err != nil {
		t.Fatalf("export: %v", err)
	}
	var want, wantErr bytes.Buffer
	if err := run([]string{"-data", exportDir, "audit", "-stream"}, &want, &wantErr); err != nil {
		t.Fatalf("audit -stream: %v\nstderr: %s", err, wantErr.String())
	}

	dir, fullLog, total := truncatedExport(t, exportDir, 0.9)
	logPath := filepath.Join(dir, "Log.csv")
	awayPath := logPath + ".away"

	// The outage is sequenced off follow's own stderr, not wall-clock
	// sleeps: rename the log away once the catch-up banner confirms polling
	// has started, and bring it back (grown to the full log) only after a
	// retried poll error proves the outage was observed.
	followCh := make(chan struct{})
	retryCh := make(chan struct{})
	gotErr := &markerWriter{markers: map[string]chan struct{}{
		"following ":      followCh,
		"retrying within": retryCh,
	}}
	go func() {
		<-followCh
		if err := os.Rename(logPath, awayPath); err != nil {
			t.Errorf("renaming log away: %v", err)
			return
		}
		<-retryCh
		tmp := filepath.Join(dir, ".Log.csv.tmp")
		if err := os.WriteFile(tmp, fullLog, 0o644); err != nil {
			t.Errorf("writing grown log: %v", err)
			return
		}
		if err := os.Rename(tmp, logPath); err != nil {
			t.Errorf("renaming grown log back: %v", err)
		}
	}()

	var got bytes.Buffer
	err := run([]string{"-data", dir, "audit", "-follow",
		"-poll", "5ms", "-grace", "10s", "-follow-rows", fmt.Sprint(total)}, &got, gotErr)
	if err != nil {
		t.Fatalf("audit -follow: %v\nstderr: %s", err, gotErr.String())
	}
	if got.String() != want.String() {
		t.Errorf("follow NDJSON differs from one-shot stream (%d vs %d bytes)", got.Len(), want.Len())
	}
	if !strings.Contains(gotErr.String(), "retrying within") {
		t.Errorf("stderr shows no retried poll errors — the outage window was never observed:\n%s", gotErr.String())
	}
}

// markerWriter is a threadsafe stderr sink that closes a marker's channel
// the first time the accumulated output contains its substring — how the
// grace tests sequence filesystem outages against follow's progress without
// sleeps.
type markerWriter struct {
	mu      sync.Mutex
	buf     bytes.Buffer
	markers map[string]chan struct{}
}

func (w *markerWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	for s, ch := range w.markers {
		select {
		case <-ch:
		default:
			if bytes.Contains(w.buf.Bytes(), []byte(s)) {
				close(ch)
			}
		}
	}
	return len(p), nil
}

func (w *markerWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestFollowGraceExpires is the bound on the bound: a poll failure that
// never heals must end the session with the underlying error once the grace
// window is spent, not retry forever.
func TestFollowGraceExpires(t *testing.T) {
	exportDir := t.TempDir()
	var stdout, stderr bytes.Buffer
	if err := run([]string{"export", "-dir", exportDir}, &stdout, &stderr); err != nil {
		t.Fatalf("export: %v", err)
	}
	dir, _, total := truncatedExport(t, exportDir, 0.9)
	logPath := filepath.Join(dir, "Log.csv")

	followCh := make(chan struct{})
	gotErr := &markerWriter{markers: map[string]chan struct{}{"following ": followCh}}
	go func() {
		<-followCh
		if err := os.Rename(logPath, logPath+".gone"); err != nil {
			t.Errorf("renaming log away: %v", err)
		}
	}()

	var got bytes.Buffer
	start := time.Now()
	err := run([]string{"-data", dir, "audit", "-follow",
		"-poll", "5ms", "-grace", "75ms", "-follow-rows", fmt.Sprint(total)}, &got, gotErr)
	if err == nil || !strings.Contains(err.Error(), "follow poll failing") {
		t.Fatalf("follow with a permanent outage: err = %v, want grace-window failure", err)
	}
	if !strings.Contains(err.Error(), "grace 75ms") {
		t.Errorf("error does not name the grace window: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("follow took %v to give up on a 75ms grace window", elapsed)
	}
}
