package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/fault"
	"repro/internal/federate"
)

// installFaults parses the -faults spec and arms the process-wide fault
// registry, seeding it from the generator seed so a chaos run replays the
// same fault sequence every time. An empty spec is a no-op.
func installFaults(spec string, seed int64) error {
	if spec == "" {
		return nil
	}
	rules, err := parseFaultRules(spec)
	if err != nil {
		return err
	}
	fault.Default.SetSeed(uint64(seed))
	fault.Install(rules...)
	return nil
}

// parseFaultRules parses the -faults value: comma-separated
// SITE:KIND[:COUNT[:AFTER]] entries, where SITE is an injection-site name
// (trailing * matches a prefix — "federate.shard1.*" arms every seam of
// that shard), KIND is one of
//
//	error      permanent (non-retryable) injected error
//	flaky      transient (retryable) injected error
//	delay=DUR  sleep DUR, then proceed normally
//	hang       block until the call timeout cuts the attempt
//	panic      panic with an injected error (contained by the engine)
//
// COUNT is how many times the rule fires before healing (0 or omitted =
// never heals), and AFTER is how many matched calls pass through first.
// "federate.shard1.stream:flaky:2:3" reads "shard 1's stream seam: let 3
// calls through, fail the next 2, then heal".
func parseFaultRules(spec string) ([]fault.Rule, error) {
	var rules []fault.Rule
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			return nil, fmt.Errorf("-faults %q contains an empty entry", spec)
		}
		parts := strings.Split(entry, ":")
		if len(parts) < 2 || len(parts) > 4 {
			return nil, fmt.Errorf("-faults entry %q: want SITE:KIND[:COUNT[:AFTER]]", entry)
		}
		r := fault.Rule{Site: parts[0]}
		if r.Site == "" {
			return nil, fmt.Errorf("-faults entry %q has an empty site", entry)
		}
		kind := parts[1]
		switch {
		case kind == "error":
			r.Kind = fault.KindError
		case kind == "flaky":
			r.Kind = fault.KindError
			r.Err = fault.Retryable(errors.New("injected transient fault"))
		case kind == "hang":
			r.Kind = fault.KindHang
		case kind == "panic":
			r.Kind = fault.KindPanic
		case strings.HasPrefix(kind, "delay="):
			d, err := time.ParseDuration(kind[len("delay="):])
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("-faults entry %q: bad delay (want delay=DUR with a positive duration)", entry)
			}
			r.Kind = fault.KindDelay
			r.Delay = d
		default:
			return nil, fmt.Errorf("-faults entry %q: unknown kind %q (want error, flaky, delay=DUR, hang, or panic)", entry, kind)
		}
		if len(parts) >= 3 {
			n, err := strconv.Atoi(parts[2])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("-faults entry %q: bad count %q (want a non-negative integer; 0 never heals)", entry, parts[2])
			}
			r.Count = n
		}
		if len(parts) == 4 {
			n, err := strconv.Atoi(parts[3])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("-faults entry %q: bad after %q (want a non-negative integer)", entry, parts[3])
			}
			r.After = n
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// reportDegraded surfaces a degraded-mode partial result after a federated
// audit: a human note on stderr always, plus — in stream mode, where stdout
// is machine-readable NDJSON — a final trailer object
// {"degraded":{"missingShards":[...],"rowsSkipped":N}} so consumers can
// tell a partial stream from a complete one without parsing stderr. A
// complete result (or strict mode) emits nothing.
func (a *app) reportDegraded(fed *federate.Federation, stream bool) error {
	if fed == nil || !fed.DegradedMode() {
		return nil
	}
	d := fed.LastDegraded()
	if d.IsZero() {
		return nil
	}
	fmt.Fprintf(a.stderr, "ebaudit: DEGRADED result: missing shards [%s], %d rows skipped\n",
		strings.Join(d.MissingShards, ", "), d.RowsSkipped)
	if !stream {
		return nil
	}
	if d.MissingShards == nil {
		d.MissingShards = []string{}
	}
	return json.NewEncoder(a.stdout).Encode(struct {
		Degraded federate.Degraded `json:"degraded"`
	}{d})
}
