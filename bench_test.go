// Package repro's root benchmark suite regenerates every table and figure of
// the paper's evaluation (one benchmark per artifact, named after it), plus
// micro-benchmarks for the substrate operations and ablation benchmarks for
// the design choices DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// The per-figure benchmarks operate on the Small dataset (~1/50 CareWeb) and
// report the figure's rendered output once per run via b.Log at -v.
package repro

import (
	"context"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"repro/internal/accesslog"
	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/ehr"
	"repro/internal/experiments"
	"repro/internal/explain"
	"repro/internal/fault"
	"repro/internal/federate"
	"repro/internal/groups"
	"repro/internal/metrics"
	"repro/internal/mine"
	"repro/internal/obs"
	"repro/internal/pathmodel"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/store"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env

	auditorOnce sync.Once
	auditorInst *core.Auditor
	auditorErr  string
)

func smallEnv(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() { benchEnv = experiments.Prepare(experiments.Default()) })
	return benchEnv
}

// batchAuditor builds (once) a fully configured auditor over the Figure-6
// scale dataset — the Small hospital's whole week of accesses with the
// complete hand-crafted catalog — with template masks pre-warmed, and
// differentially verifies that the parallel batch engine reproduces the
// sequential reports before any timing starts.
func batchAuditor(b *testing.B) *core.Auditor {
	b.Helper()
	e := smallEnv(b)
	auditorOnce.Do(func() {
		a := core.NewAuditor(e.DS.DB, ehr.SchemaGraph(ehr.DefaultGraphOptions()), core.WithNamer(e.DS))
		// experiments.Prepare already installed the trained Groups table.
		a.AddTemplates(explain.Handcrafted(true, true).All()...)
		seq := a.ExplainAll(context.Background(), 1)
		par := a.ExplainAll(context.Background(), 8)
		if !reflect.DeepEqual(seq, par) {
			auditorErr = "parallel ExplainAll reports differ from sequential"
			return
		}
		auditorInst = a
	})
	if auditorErr != "" {
		b.Fatal(auditorErr)
	}
	return auditorInst
}

// benchmarkExplainAll times one full batch audit of the log at the given
// worker count.
func benchmarkExplainAll(b *testing.B, parallelism int) {
	a := batchAuditor(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if reports := a.ExplainAll(ctx, parallelism); len(reports) == 0 {
			b.Fatal("no reports")
		}
	}
}

// BenchmarkExplainAllSequential is the single-worker baseline the parallel
// variants are judged against.
func BenchmarkExplainAllSequential(b *testing.B) { benchmarkExplainAll(b, 1) }

// BenchmarkExplainAllParallel4 runs the batch auditing engine with 4
// workers; the acceptance bar is ≥ 2x over the sequential baseline.
func BenchmarkExplainAllParallel4(b *testing.B) { benchmarkExplainAll(b, 4) }

// BenchmarkExplainAllParallel8 runs the batch auditing engine with 8
// workers.
func BenchmarkExplainAllParallel8(b *testing.B) { benchmarkExplainAll(b, 8) }

// BenchmarkUnexplainedParallel times the parallel misuse-detection shortlist
// (masks pre-warmed, so this isolates the sharded union scan).
func BenchmarkUnexplainedParallel(b *testing.B) {
	a := batchAuditor(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.UnexplainedAccessesParallel(ctx, 8)
	}
}

// BenchmarkFigure6 regenerates Figure 6 (event frequency, all accesses).
func BenchmarkFigure6(b *testing.B) {
	e := smallEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := experiments.Figure6(e)
		if len(f.Bars) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFigure7 regenerates Figure 7 (hand-crafted recall, all accesses).
func BenchmarkFigure7(b *testing.B) {
	e := smallEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure7(e)
	}
}

// BenchmarkFigure8 regenerates Figure 8 (event frequency, first accesses).
func BenchmarkFigure8(b *testing.B) {
	e := smallEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure8(e)
	}
}

// BenchmarkFigure9 regenerates Figure 9 (hand-crafted recall, first
// accesses).
func BenchmarkFigure9(b *testing.B) {
	e := smallEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure9(e)
	}
}

// BenchmarkFigure10_11 regenerates the collaborative-group composition
// analysis of Figures 10 and 11.
func BenchmarkFigure10_11(b *testing.B) {
	e := smallEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := experiments.Figure10_11(e, 2)
		if len(f.Groups) == 0 {
			b.Fatal("no groups")
		}
	}
}

// BenchmarkFigure12 regenerates Figure 12 (group predictive power by
// hierarchy depth).
func BenchmarkFigure12(b *testing.B) {
	e := smallEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure12(e)
	}
}

// BenchmarkFigure12Decorated regenerates the decorated-template variant of
// Figure 12 (§5.3.4 future work).
func BenchmarkFigure12Decorated(b *testing.B) {
	e := smallEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure12Decorated(e)
	}
}

// BenchmarkFigure13 regenerates Figure 13 (mining performance, all five
// algorithms). This is the heaviest benchmark; each iteration runs five
// complete mining passes.
func BenchmarkFigure13(b *testing.B) {
	e := smallEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure13(e)
	}
}

// BenchmarkFigure13OneWay times only the one-way miner, for quick
// comparisons.
func BenchmarkFigure13OneWay(b *testing.B) {
	e := smallEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure13(e, mine.AlgoOneWay)
	}
}

// BenchmarkFigure14 regenerates Figure 14 (mined template predictive power).
func BenchmarkFigure14(b *testing.B) {
	e := smallEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure14(e)
	}
}

// BenchmarkTable1 regenerates Table 1 (template stability across periods).
func BenchmarkTable1(b *testing.B) {
	e := smallEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Table1(e)
	}
}

// BenchmarkHeadline regenerates the headline ">94% explained" numbers.
func BenchmarkHeadline(b *testing.B) {
	e := smallEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Headline(e)
	}
}

// --- prepared-plan benchmarks ----------------------------------------------

// BenchmarkPreparedReuse measures what the engine-level plan cache buys on
// the mask-evaluation hot path: repeated row classification through one
// prepared handle (plan, backward feasible-start set, and forward reach
// memo compiled/computed once, shared by every cursor) against a
// compile-each-time baseline that drops the cache before every evaluation.
// With a warm handle each evaluation allocates only the output mask, so
// allocs/op collapse versus recompilation — the open case re-runs the
// backward pass every time, the closed case re-propagates every distinct
// patient.
func BenchmarkPreparedReuse(b *testing.B) {
	e := smallEnv(b)
	closed := explain.GroupTemplate("appt-same-group", "Appointments", "an appointment").Path
	open := explain.NewIndicator("appt", "Appointments").Path

	b.Run("open/prepared", func(b *testing.B) {
		ev := query.NewEvaluator(e.DS.DB)
		pp := ev.Prepare(open)
		pp.ConnectedRows() // warm the shared feasible-start set
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if len(pp.ConnectedRows()) == 0 {
				b.Fatal("empty mask")
			}
		}
	})
	b.Run("open/recompile", func(b *testing.B) {
		ev := query.NewEvaluator(e.DS.DB)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ev.InvalidatePlans()
			if len(ev.ConnectedRows(open)) == 0 {
				b.Fatal("empty mask")
			}
		}
	})
	b.Run("closed/prepared", func(b *testing.B) {
		ev := query.NewEvaluator(e.DS.DB)
		pp := ev.Prepare(closed)
		pp.ExplainedRows() // warm the shared reach memo
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if len(pp.ExplainedRows()) == 0 {
				b.Fatal("empty mask")
			}
		}
	})
	b.Run("closed/recompile", func(b *testing.B) {
		ev := query.NewEvaluator(e.DS.DB)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ev.InvalidatePlans()
			if len(ev.ExplainedRows(closed)) == 0 {
				b.Fatal("empty mask")
			}
		}
	})
}

// benchmarkMaskSharded times computing every template mask from scratch at
// the given worker count: ensureMasks shards each template's log-row range
// across the pool (explain.Template.EvaluateRange over shared prepared
// plans), so unlike BenchmarkExplainAll — whose masks are cached after the
// first iteration — this isolates the intra-template mask sharding the
// prepared-plan API enables.
func benchmarkMaskSharded(b *testing.B, parallelism int) {
	a := batchAuditor(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.ResetMaskCache()
		if f := a.ExplainedFractionParallel(ctx, parallelism); f == 0 {
			b.Fatal("zero explained fraction")
		}
	}
}

// BenchmarkMaskShardedSequential is the single-worker mask-computation
// baseline.
func BenchmarkMaskShardedSequential(b *testing.B) { benchmarkMaskSharded(b, 1) }

// BenchmarkMaskSharded4 computes masks with 4 workers; with intra-template
// sharding even a catalog of few expensive templates scales past
// one-worker-per-template.
func BenchmarkMaskSharded4(b *testing.B) { benchmarkMaskSharded(b, 4) }

// BenchmarkMaskSharded8 computes masks with 8 workers.
func BenchmarkMaskSharded8(b *testing.B) { benchmarkMaskSharded(b, 8) }

// BenchmarkMineParallel compares the one-way miner's candidate-evaluation
// stage at 1 and 8 workers; results are identical, only wall-clock differs.
func BenchmarkMineParallel(b *testing.B) {
	graph := ehr.SchemaGraph(ehr.DefaultGraphOptions())
	for _, par := range []int{1, 8} {
		b.Run(fmt.Sprintf("j=%d", par), func(b *testing.B) {
			ev, opt := miningSetup(b)
			opt.Parallelism = par
			for i := 0; i < b.N; i++ {
				mine.OneWay(ev, graph, opt)
			}
		})
	}
}

// --- streaming benchmarks --------------------------------------------------

var (
	mediumOnce sync.Once
	mediumAud  *core.Auditor
)

// mediumAuditor builds (once) an auditor over the Medium hospital (~95k log
// rows) with the non-group catalog and pre-warmed masks, so the streaming
// and materializing benchmarks below time only the report path.
func mediumAuditor(b *testing.B) *core.Auditor {
	b.Helper()
	mediumOnce.Do(func() {
		ds := ehr.Generate(ehr.Medium())
		a := core.NewAuditor(ds.DB, ehr.SchemaGraph(ehr.DefaultGraphOptions()), core.WithNamer(ds))
		a.AddTemplates(explain.Handcrafted(true, false).All()...)
		a.ExplainedFractionParallel(context.Background(), 8) // warm masks
		mediumAud = a
	})
	return mediumAud
}

// liveHeap forces a collection and returns the bytes still reachable — the
// peak-retention measure the streaming pipeline is designed to shrink.
func liveHeap() float64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return float64(m.HeapAlloc)
}

// BenchmarkStreamReports drives the full streaming audit of the Medium log
// through a consuming sink. The reported live-B metric is the heap still
// reachable after the run: the stream retains nothing, so it stays near
// zero, while BenchmarkExplainAllMedium — the same work materialized —
// retains the whole report slice. Comparing the two shows what bounded
// buffering buys at hospital scale.
func BenchmarkStreamReports(b *testing.B) {
	a := mediumAuditor(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	var worst float64
	for i := 0; i < b.N; i++ {
		before := liveHeap()
		texts := 0
		if err := a.StreamReports(ctx, 8, func(rep core.AccessReport) error {
			texts += len(rep.Explanations)
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		if texts == 0 {
			b.Fatal("no explanations streamed")
		}
		if d := liveHeap() - before; d > worst {
			worst = d
		}
	}
	if worst < 0 {
		worst = 0
	}
	b.ReportMetric(worst, "live-B")
}

// BenchmarkExplainAllMedium materializes the same Medium audit that
// BenchmarkStreamReports streams; its live-B metric is the retained
// full-log report slice the streaming pipeline avoids.
func BenchmarkExplainAllMedium(b *testing.B) {
	a := mediumAuditor(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	var worst float64
	for i := 0; i < b.N; i++ {
		before := liveHeap()
		reports := a.ExplainAll(ctx, 8)
		if len(reports) == 0 {
			b.Fatal("no reports")
		}
		if d := liveHeap() - before; d > worst {
			worst = d
		}
		runtime.KeepAlive(reports)
	}
	if worst < 0 {
		worst = 0
	}
	b.ReportMetric(worst, "live-B")
}

// benchmarkEval classifies every Medium log row through the length-4
// department template on a fresh engine each iteration, reporting the worst
// heap evaluation left reachable while the engine lives — the footprint a
// long-lived plan entry pins between evaluations. The baseline is taken
// after Prepare and the output mask is dropped before measuring, so the
// metric isolates what evaluating retains on top of the compiled plan: the
// materialized path keeps one propagated value set per distinct patient in
// the shared reach memo (unbounded here, to measure the whole
// materialization), while the lazy path memoizes per call and keeps
// nothing.
func benchmarkEval(b *testing.B, lazyOn bool) {
	a := mediumAuditor(b)
	tpl := explain.DeptTemplate("appt-same-dept", "Appointments", "an appointment")
	b.ReportAllocs()
	b.ResetTimer()
	var worst float64
	for i := 0; i < b.N; i++ {
		ev := query.NewEvaluator(a.Database())
		ev.SetLazyEval(lazyOn)
		ev.SetReachMemoCap(0)
		pp := ev.Prepare(tpl.Path)
		before := liveHeap()
		rows := pp.ExplainedRows()
		if len(rows) == 0 {
			b.Fatal("empty mask")
		}
		rows = nil
		_ = rows
		if d := liveHeap() - before; d > worst {
			worst = d
		}
		runtime.KeepAlive(ev)
	}
	if worst < 0 {
		worst = 0
	}
	b.ReportMetric(worst, "live-B")
}

// BenchmarkEvalLazy is the lazy iterator execution side of the tentpole
// comparison; its live-B should be a small constant.
func BenchmarkEvalLazy(b *testing.B) { benchmarkEval(b, true) }

// BenchmarkEvalMaterialized runs the same classification through the
// materialized valueSet oracle; its live-B is the retained reach memo the
// lazy path eliminates (the acceptance bar is >= 5x between the two).
func BenchmarkEvalMaterialized(b *testing.B) { benchmarkEval(b, false) }

// BenchmarkObsOverhead prices the observability layer on the hot lazy
// evaluation of BenchmarkEvalLazy. The disabled sub-benchmark runs with
// every obs surface off — its cost over the plain BenchmarkEvalLazy is the
// layer's passive tax (one atomic gate load per entry point plus a nil
// check per op visit), and the PR's acceptance bar holds it within 2% of
// the pre-PR baseline. The enabled sub-benchmark turns on the full surface
// — timed metrics, an active span tracer, and per-op exec stats — and
// prices what a diagnosed run pays.
func BenchmarkObsOverhead(b *testing.B) {
	b.Run("disabled", func(b *testing.B) { benchmarkEvalObs(b, false) })
	b.Run("enabled", func(b *testing.B) { benchmarkEvalObs(b, true) })
}

// benchmarkEvalObs is benchmarkEval's lazy path with the observability
// surface toggled as one unit: obs.Enabled (timed metrics), an installed
// tracer, and per-engine exec statistics.
func benchmarkEvalObs(b *testing.B, enabled bool) {
	if enabled {
		obs.SetEnabled(true)
		prev := obs.SetTracer(obs.NewTracer(0))
		b.Cleanup(func() {
			obs.SetEnabled(false)
			obs.SetTracer(prev)
		})
	}
	a := mediumAuditor(b)
	tpl := explain.DeptTemplate("appt-same-dept", "Appointments", "an appointment")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := query.NewEvaluator(a.Database())
		ev.SetLazyEval(true)
		ev.SetReachMemoCap(0)
		ev.SetExecStats(enabled)
		pp := ev.Prepare(tpl.Path)
		if len(pp.ExplainedRows()) == 0 {
			b.Fatal("empty mask")
		}
	}
}

// --- federated benchmarks --------------------------------------------------

var (
	fedOnce sync.Once
	fedInst *federate.Federation
	fedErr  string
)

// mediumFederation partitions the Medium auditor's database across 4 shard
// engines (time-range shard key, same non-group catalog) with masks
// pre-warmed, so BenchmarkFederatedStream times the shard-parallel
// report path plus the k-way merge and nothing else.
func mediumFederation(b *testing.B) *federate.Federation {
	b.Helper()
	a := mediumAuditor(b)
	fedOnce.Do(func() {
		f, err := federate.Split(a.Database(), ehr.SchemaGraph(ehr.DefaultGraphOptions()), 4, nil,
			federate.WithoutGroups())
		if err != nil {
			fedErr = err.Error()
			return
		}
		f.AddTemplates(explain.Handcrafted(true, false).All()...)
		f.ExplainedFraction(context.Background(), 8) // warm masks
		fedInst = f
	})
	if fedErr != "" {
		b.Fatal(fedErr)
	}
	return fedInst
}

// BenchmarkFederatedStream drives the full federated audit of the Medium
// log — 4 shard engines, each streaming its slice through the bounded core
// pipeline, merged back into global log order — through a consuming sink.
// Compare against BenchmarkStreamReports (one engine, same log, same
// catalog): the work is identical, so the delta is the federation overhead
// (per-shard pipelines plus the k-way merge), and the live-B metric shows
// the merge's bounded buffering retains no more than the single-engine
// stream does.
func BenchmarkFederatedStream(b *testing.B) {
	f := mediumFederation(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	var worst float64
	for i := 0; i < b.N; i++ {
		before := liveHeap()
		texts := 0
		if err := f.StreamReports(ctx, 8, func(rep core.AccessReport) error {
			texts += len(rep.Explanations)
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		if texts == 0 {
			b.Fatal("no explanations streamed")
		}
		if d := liveHeap() - before; d > worst {
			worst = d
		}
	}
	if worst < 0 {
		worst = 0
	}
	b.ReportMetric(worst, "live-B")
}

// BenchmarkFaultOverhead pins the cost of carrying fault-injection seams in
// the hot paths. single-disabled mirrors BenchmarkStreamReports and
// federated-disabled mirrors BenchmarkFederatedStream with the registry in
// its default disabled state, so comparing each against its twin measures
// the seams' overhead — one atomic load per guard, which must stay within
// noise (~2%). federated-armed keeps the registry enabled with a rule that
// matches no engine site, timing the rule-scan path the per-row seam takes
// once any injector is installed.
func BenchmarkFaultOverhead(b *testing.B) {
	ctx := context.Background()
	drive := func(b *testing.B, stream func(fn func(core.AccessReport) error) error) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			texts := 0
			if err := stream(func(rep core.AccessReport) error {
				texts += len(rep.Explanations)
				return nil
			}); err != nil {
				b.Fatal(err)
			}
			if texts == 0 {
				b.Fatal("no explanations streamed")
			}
		}
	}
	b.Run("single-disabled", func(b *testing.B) {
		a := mediumAuditor(b)
		drive(b, func(fn func(core.AccessReport) error) error {
			return a.StreamReports(ctx, 8, fn)
		})
	})
	b.Run("federated-disabled", func(b *testing.B) {
		f := mediumFederation(b)
		drive(b, func(fn func(core.AccessReport) error) error {
			return f.StreamReports(ctx, 8, fn)
		})
	})
	b.Run("federated-armed", func(b *testing.B) {
		f := mediumFederation(b)
		fault.Install(fault.Rule{Site: "bench.nowhere"})
		b.Cleanup(fault.Reset)
		drive(b, func(fn func(core.AccessReport) error) error {
			return f.StreamReports(ctx, 8, fn)
		})
	})
}

// --- micro-benchmarks -----------------------------------------------------

// BenchmarkGenerateSmall times dataset generation.
func BenchmarkGenerateSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ds := ehr.Generate(ehr.Small())
		if ds.Log().NumRows() == 0 {
			b.Fatal("empty log")
		}
	}
}

// BenchmarkClustering times user-graph construction plus hierarchical
// modularity clustering.
func BenchmarkClustering(b *testing.B) {
	e := smallEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := groups.BuildUserGraph(e.TrainLog)
		h := groups.BuildHierarchy(g, 8)
		if h.MaxDepth() < 1 {
			b.Fatal("degenerate hierarchy")
		}
	}
}

// BenchmarkSupportLen2 times exact support evaluation of a length-2
// template over the full log.
func BenchmarkSupportLen2(b *testing.B) {
	e := smallEnv(b)
	ev := query.NewEvaluator(e.DS.DB)
	tpl := explain.WithDrTemplate("appt-with-dr", "Appointments", "an appointment")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ev.Support(tpl.Path) == 0 {
			b.Fatal("zero support")
		}
	}
}

// BenchmarkSupportLen4Groups times support evaluation of the length-4
// collaborative-group template, the most expensive hand-crafted query.
func BenchmarkSupportLen4Groups(b *testing.B) {
	e := smallEnv(b)
	ev := query.NewEvaluator(e.DS.DB)
	tpl := explain.GroupTemplate("appt-same-group", "Appointments", "an appointment")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ev.Support(tpl.Path) == 0 {
			b.Fatal("zero support")
		}
	}
}

// BenchmarkEstimate times the optimizer-style cardinality estimate that the
// skip-non-selective optimization relies on being much cheaper than exact
// evaluation.
func BenchmarkEstimate(b *testing.B) {
	e := smallEnv(b)
	ev := query.NewEvaluator(e.DS.DB)
	tpl := explain.GroupTemplate("appt-same-group", "Appointments", "an appointment")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.EstimateSupport(tpl.Path)
	}
}

// BenchmarkFirstAccesses times first-access extraction over the full log.
func BenchmarkFirstAccesses(b *testing.B) {
	e := smallEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if accesslog.FirstAccesses(e.FullLog).NumRows() == 0 {
			b.Fatal("no first accesses")
		}
	}
}

// --- ablation benchmarks ---------------------------------------------------

func miningSetup(b *testing.B) (*query.Evaluator, mine.Options) {
	e := smallEnv(b)
	db, audited := e.MiningDB()
	opt := e.Cfg.Mining
	opt.MaxLength = 4 // keep ablations comparable and fast
	return query.NewEvaluatorWithLog(db, audited), opt
}

// BenchmarkAblationSupportCache compares mining with and without the
// canonical-condition support cache (§3.2.1 optimization 1).
func BenchmarkAblationSupportCache(b *testing.B) {
	graph := ehr.SchemaGraph(ehr.DefaultGraphOptions())
	b.Run("cache=on", func(b *testing.B) {
		ev, opt := miningSetup(b)
		opt.CacheSupport = true
		for i := 0; i < b.N; i++ {
			mine.OneWay(ev, graph, opt)
		}
	})
	b.Run("cache=off", func(b *testing.B) {
		ev, opt := miningSetup(b)
		opt.CacheSupport = false
		for i := 0; i < b.N; i++ {
			mine.OneWay(ev, graph, opt)
		}
	})
}

// BenchmarkAblationSkip compares mining with and without the
// skip-non-selective-paths optimization (§3.2.1 optimization 3).
func BenchmarkAblationSkip(b *testing.B) {
	graph := ehr.SchemaGraph(ehr.DefaultGraphOptions())
	b.Run("skip=on", func(b *testing.B) {
		ev, opt := miningSetup(b)
		opt.SkipNonSelective = true
		for i := 0; i < b.N; i++ {
			mine.OneWay(ev, graph, opt)
		}
	})
	b.Run("skip=off", func(b *testing.B) {
		ev, opt := miningSetup(b)
		opt.SkipNonSelective = false
		for i := 0; i < b.N; i++ {
			mine.OneWay(ev, graph, opt)
		}
	})
}

// BenchmarkAblationDistinct compares the DISTINCT-projection support
// evaluator against the naive nested-loop evaluator (§3.2.1 optimization 2)
// on the length-2 appointment template.
func BenchmarkAblationDistinct(b *testing.B) {
	e := smallEnv(b)
	tpl := explain.WithDrTemplate("appt-with-dr", "Appointments", "an appointment")
	// Evaluate over first accesses to keep the naive variant tractable.
	db, audited := e.MiningDB()
	ev := query.NewEvaluatorWithLog(db, audited)
	want := ev.Support(tpl.Path)
	b.Run("distinct=on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if ev.Support(tpl.Path) != want {
				b.Fatal("support mismatch")
			}
		}
	})
	b.Run("distinct=off(naive)", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if ev.SupportNaive(tpl.Path) != want {
				b.Fatal("support mismatch")
			}
		}
	})
}

// BenchmarkAblationIndex compares the indexed nested-join evaluator
// (SupportNaive) against the fully index-free linear-scan baseline
// (SupportScan) on the length-2 appointment template, isolating what the
// per-column hash indexes buy on top of nothing.
func BenchmarkAblationIndex(b *testing.B) {
	e := smallEnv(b)
	tpl := explain.WithDrTemplate("appt-with-dr", "Appointments", "an appointment")
	db, audited := e.MiningDB()
	ev := query.NewEvaluatorWithLog(db, audited)
	want := ev.Support(tpl.Path)
	b.Run("index=on(naive)", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if ev.SupportNaive(tpl.Path) != want {
				b.Fatal("support mismatch")
			}
		}
	})
	b.Run("index=off(scan)", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if ev.SupportScan(tpl.Path) != want {
				b.Fatal("support mismatch")
			}
		}
	})
}

// BenchmarkAblationPlanner compares support evaluation of the length-4
// department and collaborative-group templates — the longest decorated
// paths in the hand-crafted catalog — under the greedy hop-ordering planner
// against the declared-order baseline. The plan is prepared once and the
// timed loop re-runs full per-start propagation through it (Prepared.Support
// keeps no result cache), so the measurement isolates what the planner's
// restructured chain buys on the engine's plan-reuse hot path. The planned
// side additionally reports its one-time planning overhead per Prepare as
// plan-ns/prepare, read off PlanCacheStats; a plan is planned once per
// cache entry, so this cost amortizes across every evaluation that reuses
// it (masks, range shards, follow polls, mined-candidate probes).
func BenchmarkAblationPlanner(b *testing.B) {
	e := smallEnv(b)
	paths := []struct {
		name string
		tpl  *explain.PathTemplate
	}{
		{"dept-len4", explain.DeptTemplate("appt-same-dept", "Appointments", "an appointment")},
		{"group-len4", explain.GroupTemplate("appt-same-group", "Appointments", "an appointment")},
	}
	for _, tc := range paths {
		want := query.NewEvaluator(e.DS.DB).Support(tc.tpl.Path)
		if want == 0 {
			b.Fatalf("%s: zero support", tc.name)
		}
		b.Run(tc.name+"/planner=on", func(b *testing.B) {
			ev := query.NewEvaluator(e.DS.DB)
			pp := ev.Prepare(tc.tpl.Path)
			if !pp.PlanInfo().Planned {
				b.Fatal("plan not planned")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if pp.Support() != want {
					b.Fatal("support mismatch")
				}
			}
			b.StopTimer()
			if st := ev.PlanCacheStats(); st.PlansPlanned > 0 {
				b.ReportMetric(float64(st.PlanNanos)/float64(st.PlansPlanned), "plan-ns/prepare")
			}
		})
		b.Run(tc.name+"/planner=off(declared)", func(b *testing.B) {
			ev := query.NewEvaluator(e.DS.DB)
			ev.SetPlannerEnabled(false)
			pp := ev.Prepare(tc.tpl.Path)
			if pp.PlanInfo().Planned {
				b.Fatal("oracle plan went through the planner")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if pp.Support() != want {
					b.Fatal("support mismatch")
				}
			}
		})
	}
}

// BenchmarkAblationBridgeLength sweeps the bridged miner's half-length,
// complementing Figure 13.
func BenchmarkAblationBridgeLength(b *testing.B) {
	graph := ehr.SchemaGraph(ehr.DefaultGraphOptions())
	for _, l := range []int{2, 3, 4} {
		b.Run(mine.AlgoBridge(l), func(b *testing.B) {
			ev, opt := miningSetup(b)
			for i := 0; i < b.N; i++ {
				mine.Bridged(ev, graph, opt, l)
			}
		})
	}
}

// --- incremental append benchmarks -----------------------------------------

var (
	incrOnce    sync.Once
	incrAud     *core.Auditor
	incrLog     *relation.Table
	incrPattern [][]relation.Value
	incrNextLid int64
	incrMaxDate int64
)

// incrementalAuditor builds (once) a mutable Medium auditor — separate from
// the shared read-only one, because these benchmarks append to its log —
// with the non-group catalog and pre-warmed masks, plus an append pattern:
// the last ~1% of the generated log, re-stamped per batch with fresh
// ascending Lids at the log's final date so every batch is a chronological
// append of realistic rows (existing patients and users, so the warm reach
// memo is representative).
func incrementalAuditor(b *testing.B) (*core.Auditor, *relation.Table) {
	b.Helper()
	incrOnce.Do(func() {
		ds := ehr.Generate(ehr.Medium())
		a := core.NewAuditor(ds.DB, ehr.SchemaGraph(ehr.DefaultGraphOptions()), core.WithNamer(ds))
		a.AddTemplates(explain.Handcrafted(true, false).All()...)
		a.ExplainedFractionParallel(context.Background(), 8) // warm masks
		incrAud = a
		incrLog = ds.DB.MustTable(pathmodel.LogTable)
		n := incrLog.NumRows()
		li, _ := incrLog.ColumnIndex(pathmodel.LogIDColumn)
		di, _ := incrLog.ColumnIndex(pathmodel.LogDateColumn)
		for r := 0; r < n; r++ {
			if lid := incrLog.Row(r)[li].AsInt(); lid >= incrNextLid {
				incrNextLid = lid + 1
			}
			if d := incrLog.Row(r)[di].AsInt(); d > incrMaxDate {
				incrMaxDate = d
			}
		}
		batch := n / 100
		if batch < 1 {
			batch = 1
		}
		for r := n - batch; r < n; r++ {
			incrPattern = append(incrPattern, incrLog.Row(r))
		}
	})
	return incrAud, incrLog
}

// appendIncrementalBatch appends one pattern batch (~1% of Medium) of
// strictly later (Date, Lid) rows and returns the batch size.
func appendIncrementalBatch(log *relation.Table) int {
	li, _ := log.ColumnIndex(pathmodel.LogIDColumn)
	di, _ := log.ColumnIndex(pathmodel.LogDateColumn)
	for _, src := range incrPattern {
		row := append([]relation.Value(nil), src...)
		row[li] = relation.Int(incrNextLid)
		row[di] = relation.Date(int(incrMaxDate))
		incrNextLid++
		log.Append(row...)
	}
	return len(incrPattern)
}

// BenchmarkIncrementalAppend measures the tentpole: append 1% of the Medium
// log, then Refresh — cached template masks are extended over just the new
// rows on surviving compiled plans and warm reach memos, so each iteration
// costs O(new rows). Compare ns/op and allocs/op against
// BenchmarkIncrementalAppendColdBaseline (same append, masks and plans
// dropped first — the pre-incremental behavior of recomputing the world);
// the acceptance bar is >= 5x on both.
func BenchmarkIncrementalAppend(b *testing.B) {
	a, log := incrementalAuditor(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		appendIncrementalBatch(log)
		if err := a.Refresh(ctx, 8); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := a.PlanCacheStats(); st.MaskExtensions == 0 {
		b.Fatal("incremental benchmark never extended a mask")
	}
}

// BenchmarkIncrementalAppendColdBaseline performs the same append but drops
// every cached mask and compiled plan first, so Refresh rebuilds masks from
// row 0 — what every mutation cost before append-aware invalidation.
func BenchmarkIncrementalAppendColdBaseline(b *testing.B) {
	a, log := incrementalAuditor(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		appendIncrementalBatch(log)
		a.ResetMaskCache()
		a.Evaluator().InvalidatePlans()
		if err := a.Refresh(ctx, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// --- packed-mask benchmarks ------------------------------------------------

var (
	maskFixOnce sync.Once
	maskBools   [][]bool
	maskBits    []*bitset.Bits
)

// maskFixtures evaluates (once) every catalog template mask over the Medium
// log in both representations.
func maskFixtures(b *testing.B) ([][]bool, []*bitset.Bits) {
	b.Helper()
	a := mediumAuditor(b)
	maskFixOnce.Do(func() {
		ev := a.Evaluator()
		for _, tpl := range a.Templates() {
			m := tpl.Evaluate(ev)
			maskBools = append(maskBools, m)
			maskBits = append(maskBits, bitset.FromBools(m))
		}
	})
	return maskBools, maskBits
}

// BenchmarkMaskBitsetUnion times the packed union + fraction over the
// Medium catalog masks — one OR and one popcount per 64 rows. Compare
// against BenchmarkMaskBitsetBoolBaseline, the element-wise []bool path the
// engine used before (8x the memory, one branch per row per mask).
func BenchmarkMaskBitsetUnion(b *testing.B) {
	_, bits := maskFixtures(b)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = metrics.FractionBits(metrics.UnionBits(bits...))
	}
	if sink == 0 {
		b.Fatal("explained fraction is zero")
	}
}

// BenchmarkMaskBitsetBoolBaseline is the element-wise []bool union +
// fraction BenchmarkMaskBitsetUnion replaces.
func BenchmarkMaskBitsetBoolBaseline(b *testing.B) {
	bools, _ := maskFixtures(b)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = metrics.Fraction(metrics.Union(bools...))
	}
	if sink == 0 {
		b.Fatal("explained fraction is zero")
	}
}

// --- persistent-store startup benchmarks ------------------------------------

var (
	startupOnce sync.Once
	startupDir  string
	startupErr  string
)

// startupStore builds (once) a segment store of the Medium hospital with a
// saved warm-start snapshot: the dataset is persisted, a fully configured
// auditor runs one complete audit, and its masks and plan keys are captured
// via SaveWarmState. BenchmarkColdStart and BenchmarkWarmStart both open
// this directory; the only difference between them is whether the snapshot
// is installed before the first report.
func startupStore(b *testing.B) string {
	b.Helper()
	startupOnce.Do(func() {
		dir, err := os.MkdirTemp("", "ebstore-bench")
		if err != nil {
			startupErr = err.Error()
			return
		}
		ds := ehr.Generate(ehr.Medium())
		// Train and persist the collaborative-group hierarchy, as the CLI's
		// migration path does: the store carries Groups as an ordinary table,
		// so neither start below retrains it — the cold/warm gap is purely
		// mask and plan reconstruction over the full catalog.
		ug := groups.BuildUserGraph(ds.Log())
		ds.DB.AddTable(groups.BuildHierarchy(ug, 8).Table(ehr.TableGroups))
		if _, err := store.Create(dir, ds.DB); err != nil {
			startupErr = err.Error()
			return
		}
		// Warm against the REOPENED database so the snapshot's schema-version
		// stamp matches what every later Open reconstructs.
		s, db, err := store.Open(dir)
		if err != nil {
			startupErr = err.Error()
			return
		}
		a := core.NewAuditor(db, ehr.SchemaGraph(ehr.DefaultGraphOptions()))
		a.AddTemplates(explain.Handcrafted(true, true).All()...)
		if a.ExplainedFractionParallel(context.Background(), 8) == 0 {
			startupErr = "warm-up audit explained nothing"
			return
		}
		if err := s.SaveWarmState(db, a.CaptureWarmState()); err != nil {
			startupErr = err.Error()
			return
		}
		startupDir = dir
	})
	if startupErr != "" {
		b.Fatal(startupErr)
	}
	return startupDir
}

// startupAuditor opens the startup store and configures an auditor over it —
// the shared portion of a cold and a warm process start.
func startupAuditor(b *testing.B, dir string) (*store.Store, *core.Auditor) {
	s, db, err := store.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	a := core.NewAuditor(db, ehr.SchemaGraph(ehr.DefaultGraphOptions()))
	a.AddTemplates(explain.Handcrafted(true, true).All()...)
	return s, a
}

// BenchmarkColdStart measures time-to-first-report from a cold process:
// open the Medium segment store, configure the auditor, and produce the
// first access report — which forces every template mask to be computed
// from row 0. This is the startup cost a restart pays without a snapshot.
func BenchmarkColdStart(b *testing.B) {
	dir := startupStore(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, a := startupAuditor(b, dir)
		if rep := a.ExplainRow(0, 1); rep.Lid == 0 && !rep.Explained() {
			runtime.KeepAlive(rep)
		}
	}
}

// BenchmarkWarmStart measures the same time-to-first-report when the store's
// warm snapshot is installed first: every mask arrives cached and the first
// report touches no history. The ratio to BenchmarkColdStart is the repo's
// durable-warm-start headline (target: at least 5x).
func BenchmarkWarmStart(b *testing.B) {
	dir := startupStore(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, a := startupAuditor(b, dir)
		ws, err := s.LoadWarmState(a.Database())
		if err != nil {
			b.Fatal(err)
		}
		masks, _ := a.InstallWarmState(ws)
		if masks == 0 {
			b.Fatal("snapshot installed no masks")
		}
		if rep := a.ExplainRow(0, 1); rep.Lid == 0 && !rep.Explained() {
			runtime.KeepAlive(rep)
		}
	}
}
