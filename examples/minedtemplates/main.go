// Mined templates: the administrator's workflow of Section 3. Instead of
// hand-writing explanation templates, mine the frequent ones from six days
// of log data, review them (here: print them with their support), adopt
// them, and measure how much of the seventh day they explain — the paper's
// argument that "the administrator's time can be saved if algorithms can
// find these explanation templates."
package main

import (
	"fmt"

	"repro/internal/accesslog"
	"repro/internal/core"
	"repro/internal/ehr"
	"repro/internal/explain"
	"repro/internal/metrics"
	"repro/internal/mine"
	"repro/internal/query"
)

func main() {
	ds := ehr.Generate(ehr.Tiny())
	graph := ehr.SchemaGraph(ehr.DefaultGraphOptions())

	// Split the week: train on days 1-6, audit day 7.
	full := ds.Log()
	trainLog := accesslog.FilterDays(full, 0, 5)
	testLog := accesslog.FilterDays(full, 6, 6)

	// Infer collaborative groups from the training window and install them.
	auditor := core.NewAuditor(ds.DB, graph, core.WithNamer(ds))
	auditor.BuildGroups(core.GroupsOptions{TrainLog: trainLog})

	// Mine templates over the training window's first accesses (§5.3.3).
	miningDB := accesslog.WithLog(ds.DB, trainLog)
	mev := query.NewEvaluatorWithLog(miningDB, accesslog.FirstAccesses(trainLog))
	opt := mine.DefaultOptions()
	opt.MaxLength = 4
	res := mine.Bridged(mev, graph, opt, 2)

	fmt.Printf("mined %d templates from %d training accesses "+
		"(%d support queries, %d cache hits, %d skipped)\n\n",
		len(res.Templates), trainLog.NumRows(),
		res.Stats.SupportQueries, res.Stats.CacheHits, res.Stats.Skipped)

	// The review pass re-evaluates each candidate's support; preparing the
	// path reuses the plan the miner already compiled and cached.
	fmt.Println("administrator review — the length-2 candidates:")
	for _, p := range res.Templates {
		if p.Length() != 2 {
			continue
		}
		fmt.Printf("  support %4d  %s\n", mev.Prepare(p).Support(), p.String())
	}

	// Adopt every mined template (a real deployment would filter here) and
	// audit day 7 against the historical database.
	testDB := accesslog.WithLog(ds.DB, trainLog)
	tev := query.NewEvaluatorWithLog(testDB, testLog)
	var masks [][]bool
	for i, p := range res.Templates {
		tpl := explain.NewPathTemplate(fmt.Sprintf("mined-%d", i), p, "")
		masks = append(masks, tpl.Evaluate(tev))
	}
	// The decorated repeat-access template complements the mined set on the
	// test day (day-7 repeats of training-window pairs).
	masks = append(masks, explain.RepeatAccess{}.Evaluate(tev))

	frac := metrics.Fraction(metrics.Union(masks...))
	fmt.Printf("\nmined templates + repeat access explain %.1f%% of day-7 accesses\n", 100*frac)
}
