// Patient portal: the user-centric auditing scenario of the paper's
// Example 1.1. A patient logs in, sees every access to their medical record,
// and — instead of a bare list of unfamiliar employee names — gets a short
// explanation of why each person looked: "you had an appointment with Dr.
// Dave", "Nurse Nick works with Dr. Dave", "Radiologist Ron read your
// imaging for Dr. Dave".
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/ehr"
	"repro/internal/explain"
	"repro/internal/pathmodel"
	"repro/internal/relation"
)

func main() {
	ds := ehr.Generate(ehr.Tiny())
	auditor := core.NewAuditor(ds.DB, ehr.SchemaGraph(ehr.DefaultGraphOptions()), core.WithNamer(ds))
	auditor.BuildGroups(core.GroupsOptions{})
	auditor.AddTemplates(explain.Handcrafted(true, true).All()...)

	// Pick a patient with a busy chart: several distinct users, at least one
	// of whom the patient would not recognize (a consultation-service user).
	patient := pickBusyPatient(ds)
	if patient == nil {
		fmt.Fprintln(os.Stderr, "patientportal: no suitable patient found")
		os.Exit(1)
	}

	fmt.Printf("== Patient portal: access report for %s ==\n\n", patient.Name)
	reports := auditor.PatientReport(relation.Int(patient.ID), 1)
	fmt.Printf("Your medical record was accessed %d times this week.\n\n", len(reports))

	shown := 0
	for _, rep := range reports {
		if shown >= 12 {
			fmt.Printf("... and %d further accesses\n", len(reports)-shown)
			break
		}
		shown++
		fmt.Printf("%s  %s\n", rep.Date, rep.UserName)
		if rep.Explained() {
			// Explanations are ranked by ascending path length (§2.1); show
			// the most direct one.
			fmt.Printf("    %s\n", rep.Explanations[0].Text)
		} else {
			fmt.Printf("    We could not determine a reason for this access.\n")
			fmt.Printf("    You may request an investigation by the compliance office.\n")
		}
	}
}

// pickBusyPatient returns the patient with the most distinct users touching
// their record.
func pickBusyPatient(ds *ehr.Dataset) *ehr.Patient {
	log := ds.Log()
	pi, _ := log.ColumnIndex(pathmodel.LogPatientColumn)
	ui, _ := log.ColumnIndex(pathmodel.LogUserColumn)
	users := make(map[relation.Value]map[relation.Value]bool)
	for r := 0; r < log.NumRows(); r++ {
		row := log.Row(r)
		if users[row[pi]] == nil {
			users[row[pi]] = make(map[relation.Value]bool)
		}
		users[row[pi]][row[ui]] = true
	}
	var best *ehr.Patient
	bestN := 0
	for pv, set := range users {
		if len(set) > bestN {
			if p := ds.PatientByID(pv.AsInt()); p != nil {
				best, bestN = p, len(set)
			}
		}
	}
	return best
}
