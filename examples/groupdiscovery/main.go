// Group discovery: Section 4 of the paper, stand-alone. Builds the
// user-similarity graph W = AᵀA from the access log, clusters it by
// modularity maximization, recursively refines the clusters into a
// hierarchy, and prints the department-code composition of the largest
// groups — the analysis behind the paper's Figures 10 and 11, where the
// Cancer Center and Psychiatric Care groups emerged, with radiology,
// pharmacy, and rotating medical students mixed in.
package main

import (
	"fmt"
	"sort"

	"repro/internal/ehr"
	"repro/internal/groups"
)

func main() {
	ds := ehr.Generate(ehr.Small())

	// Train on the first six days, as in §5.3.2.
	log := ds.Log()
	graph := groups.BuildUserGraph(log)
	fmt.Printf("user-similarity graph: %d users\n", graph.NumUsers())

	hier := groups.BuildHierarchy(graph, 8)
	fmt.Printf("hierarchy depth: %d\n", hier.MaxDepth())
	for d := 0; d <= hier.MaxDepth(); d++ {
		fmt.Printf("  depth %d: %d groups\n", d, hier.NumGroupsAt(d))
	}

	// Show the composition of the three largest depth-1 groups.
	byGroup := hier.GroupsAt(1)
	type sized struct {
		id   int
		n    int
		dept map[string]int
	}
	var all []sized
	for id, members := range byGroup {
		s := sized{id: id, n: len(members), dept: map[string]int{}}
		for _, u := range members {
			if user := ds.UserByAudit(u.AsInt()); user != nil {
				s.dept[user.DeptCode]++
			}
		}
		all = append(all, s)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].n > all[j].n })

	fmt.Println("\nlargest collaborative groups (compare the paper's Figures 10 and 11):")
	for i, s := range all {
		if i >= 3 {
			break
		}
		fmt.Printf("\n  group %d — %d members\n", s.id, s.n)
		codes := make([]string, 0, len(s.dept))
		for c := range s.dept {
			codes = append(codes, c)
		}
		sort.Slice(codes, func(a, b int) bool {
			if s.dept[codes[a]] != s.dept[codes[b]] {
				return s.dept[codes[a]] > s.dept[codes[b]]
			}
			return codes[a] < codes[b]
		})
		for _, c := range codes {
			fmt.Printf("    %-45s %d\n", c, s.dept[c])
		}
	}

	// The paper's observation about department codes: a care team mixes
	// "...(Physicians)" and "Nursing-..." codes, which is why clustering
	// beats department codes as a collaboration signal.
	fmt.Println("\nnote how groups mix physician and nursing department codes —")
	fmt.Println("department codes alone would split every care team in two.")
}
