// Federated auditing: a hospital system is rarely one EHR deployment. This
// example simulates two regional installations — each holding its own slice
// of the access log and its own copy of the metadata — federates them, and
// shows that the federated audit is indistinguishable from auditing one
// merged log: the streamed reports arrive in global chronology, the
// explained fraction aggregates exactly, and templates mined across the
// shards match single-log mining query for query.
package main

import (
	"context"
	"fmt"
	"os"
	"reflect"
	"runtime"

	"repro/internal/accesslog"
	"repro/internal/core"
	"repro/internal/ehr"
	"repro/internal/explain"
	"repro/internal/federate"
	"repro/internal/mine"
	"repro/internal/pathmodel"
	"repro/internal/query"
	"repro/internal/relation"
)

func main() {
	ds := ehr.Generate(ehr.Tiny())
	graph := ehr.SchemaGraph(ehr.DefaultGraphOptions())

	// Split the week's log into two "regional deployments" at mid-week: each
	// region gets its own database holding its slice of the log plus the
	// shared metadata tables, the way two installations of the same EHR
	// product would.
	log := ds.Log()
	var early, late []int
	di, _ := log.ColumnIndex(pathmodel.LogDateColumn)
	for r := 0; r < log.NumRows(); r++ {
		if log.Row(r)[di].AsInt() < 4 {
			early = append(early, r)
		} else {
			late = append(late, r)
		}
	}
	east := accesslog.WithLog(ds.DB, log.Select(pathmodel.LogTable, early))
	west := accesslog.WithLog(ds.DB, log.Select(pathmodel.LogTable, late))

	// Federate them: the shard logs merge into one chronology (so repeat
	// accesses and collaborative groups span regions) while each region's
	// accesses are explained against its own metadata.
	fed, err := federate.Join([]*relation.Database{east, west}, graph,
		federate.WithNamer(ds), federate.WithShardNames("east", "west"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "federation: %v\n", err)
		os.Exit(1)
	}
	catalog := explain.Handcrafted(true, true).All()
	fed.AddTemplates(catalog...)

	fmt.Println(fed.Summary())
	for _, si := range fed.ShardInfos() {
		fmt.Printf("  %s: %d accesses\n", si.Name, si.Rows)
	}

	// Stream the federated audit: each shard engine audits its slice through
	// the bounded core pipeline, and the shard streams are k-way merged back
	// into global log order on the fly.
	ctx := context.Background()
	workers := runtime.NumCPU()
	streamed := 0
	var firstUnexplained *core.AccessReport
	if err := fed.StreamReports(ctx, workers, func(rep core.AccessReport) error {
		streamed++
		if firstUnexplained == nil && !rep.Explained() {
			r := rep
			firstUnexplained = &r
		}
		return nil
	}); err != nil {
		fmt.Fprintf(os.Stderr, "stream: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\nstreamed %d reports in global log order across %d shards\n", streamed, fed.NumShards())
	fmt.Printf("explained fraction: %.3f\n", fed.ExplainedFraction(ctx, workers))
	if firstUnexplained != nil {
		fmt.Printf("first unexplained access: L%d %s %s -> %s\n",
			firstUnexplained.Lid, firstUnexplained.Date,
			firstUnexplained.UserName, ds.PatientName(firstUnexplained.Patient))
	}

	// The differential: a single engine over the merged log produces the
	// exact same reports.
	single := core.NewAuditor(ds.DB, graph, core.WithNamer(ds))
	single.BuildGroups(core.GroupsOptions{})
	single.AddTemplates(catalog...)
	want := single.ExplainAll(ctx, workers)
	got := fed.ExplainAll(ctx, workers)
	if !reflect.DeepEqual(got, want) {
		fmt.Fprintln(os.Stderr, "FEDERATION DIVERGED from the single-engine audit")
		os.Exit(1)
	}
	fmt.Printf("\nfederated stream is identical to the single-engine stream (%d reports)\n", len(want))

	// Mining across the federation: candidates are generated once, each
	// support query runs per shard and the shard supports sum — templates
	// and statistics match single-log mining exactly.
	opt := mine.DefaultOptions()
	opt.MaxLength = 3
	opt.Parallelism = workers
	fedRes, err := fed.MineTemplates(mine.AlgoOneWay, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mine: %v\n", err)
		os.Exit(1)
	}
	singleRes := mine.OneWay(query.NewEvaluator(ds.DB), graph, opt)
	match := reflect.DeepEqual(fedRes.Templates, singleRes.Templates)
	fmt.Printf("mined %d templates across shards (single-log miner agrees: %v, %d support queries each)\n",
		len(fedRes.Templates), match, fedRes.Stats.SupportQueries)
	if !match {
		os.Exit(1)
	}
}
