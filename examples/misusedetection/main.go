// Misuse detection: the paper's secondary application (§1). Instead of
// manually reviewing millions of accesses, the compliance office uses
// explanations to shrink the haystack: every access some template explains
// is presumed legitimate, and only the unexplained residue needs human
// attention. The example then grades the shortlist against the generator's
// ground truth (which the auditing pipeline never sees): all snooping
// accesses should be on it.
package main

import (
	"context"
	"fmt"
	"os"
	"runtime"

	"repro/internal/core"
	"repro/internal/ehr"
	"repro/internal/explain"
)

func main() {
	ds := ehr.Generate(ehr.Tiny())
	auditor := core.NewAuditor(ds.DB, ehr.SchemaGraph(ehr.DefaultGraphOptions()), core.WithNamer(ds))
	auditor.BuildGroups(core.GroupsOptions{})
	auditor.AddTemplates(explain.Handcrafted(true, true).All()...)

	// Stream-audit the whole log concurrently: reports arrive in log order
	// through the bounded pipeline and only the unexplained residue — the
	// compliance shortlist — is retained, so memory holds the shortlist, not
	// every report. Each template's mask is itself sharded across the workers
	// (EvaluateRange over shared prepared plans), so even this small catalog
	// saturates the pool during mask computation.
	var shortlist []int
	var shortReports []core.AccessReport
	row := 0
	err := auditor.StreamReports(context.Background(), runtime.NumCPU(), func(rep core.AccessReport) error {
		if !rep.Explained() {
			shortlist = append(shortlist, row)
			shortReports = append(shortReports, rep)
		}
		row++
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "misusedetection: %v\n", err)
		os.Exit(1)
	}

	total := ds.Log().NumRows()
	fmt.Printf("access log: %d entries\n", total)
	fmt.Printf("unexplained after applying %d templates: %d (%.2f%%)\n\n",
		len(auditor.Templates()), len(shortlist), 100*float64(len(shortlist))/float64(total))

	fmt.Println("compliance shortlist:")
	for _, rep := range shortReports {
		fmt.Printf("  L%-6d %s  %-24s -> %s\n", rep.Lid, rep.Date, rep.UserName, ds.PatientName(rep.Patient))
	}

	// Grade the shortlist against ground truth. Snoops must all be caught;
	// the rest of the shortlist is the paper's "incomplete data" residue
	// (floaters with no order rows, patients with no recorded events).
	caught, missed := 0, 0
	onList := make(map[int]bool, len(shortlist))
	for _, r := range shortlist {
		onList[r] = true
	}
	for r, cause := range ds.Causes {
		if cause != ehr.CauseSnoop {
			continue
		}
		if onList[r] {
			caught++
		} else {
			missed++
		}
	}
	fmt.Printf("\nground truth check: %d/%d snooping accesses appear on the shortlist\n",
		caught, caught+missed)
	if missed > 0 {
		fmt.Println("warning: some snoops were (spuriously) explained — expected occasionally when a")
		fmt.Println("snooping user coincidentally shares a collaborative group with the victim's team")
	}
	if caught == 0 && caught+missed > 0 {
		os.Exit(1)
	}
}
