// Quickstart: generate a synthetic hospital, build an auditor with the
// hand-crafted explanation templates, and explain a single access — the
// minimal end-to-end tour of the library.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ehr"
	"repro/internal/explain"
)

func main() {
	// 1. Generate a small synthetic hospital: an access log plus the event
	//    tables that explain it (appointments, visits, documents, orders).
	ds := ehr.Generate(ehr.Tiny())
	fmt.Printf("generated %d accesses over %d days\n", ds.Log().NumRows(), ds.Config.Days)

	// 2. Build the auditor over the database and the schema's join-edge
	//    catalog, and infer collaborative groups from the log (Section 4 of
	//    the paper): nurses access their team's patients even though only
	//    the doctor appears in the Appointments table.
	auditor := core.NewAuditor(ds.DB, ehr.SchemaGraph(ehr.DefaultGraphOptions()), core.WithNamer(ds))
	hierarchy := auditor.BuildGroups(core.GroupsOptions{})
	fmt.Printf("clustered users into %d top-level collaborative groups\n", hierarchy.NumGroupsAt(1))

	// 3. Register the hand-crafted explanation templates.
	auditor.AddTemplates(explain.Handcrafted(true, true).All()...)

	// 4. Explain the first few accesses.
	shown := 0
	for row := 0; row < ds.Log().NumRows() && shown < 5; row++ {
		rep := auditor.ExplainRow(row, 1)
		if !rep.Explained() {
			continue
		}
		shown++
		fmt.Printf("\nL%d on %s: %s accessed %s's record\n  because %s\n",
			rep.Lid, rep.Date, rep.UserName, ds.PatientName(rep.Patient),
			rep.Explanations[0].Text)
	}

	// 5. The headline: how much of the log do the templates explain?
	frac := auditor.ExplainedFraction()
	fmt.Printf("\ntemplates explain %.1f%% of all accesses (the paper reports over 94%%)\n", 100*frac)
	if frac < 0.5 {
		log.Fatal("quickstart: unexpectedly low explained fraction")
	}
}
